//! End-to-end tests of the parallel sweep engine: bit-identical results
//! for every worker count, streaming-vs-trace metric equality, and panic
//! isolation inside a multi-threaded sweep.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use convergence::experiment::ProtocolFactory;
use convergence::prelude::*;
use spf::Spf;
use topology::mesh::MeshDegree;

fn options(jobs: usize, mode: SweepMode) -> SweepOptions {
    SweepOptions {
        jobs,
        retry: RetryPolicy::default(),
        mode,
    }
}

#[test]
fn run_many_is_bit_identical_for_every_job_count() {
    let cfg = ExperimentConfig::paper(ProtocolKind::Dbf, MeshDegree::D4, 0);
    let sequential = run_many_jobs(&cfg, 4, 901, 1).expect("sequential runs succeed");
    let parallel = run_many_jobs(&cfg, 4, 901, 4).expect("parallel runs succeed");
    assert_eq!(sequential.len(), parallel.len());
    for ((seq_result, seq_summary), (par_result, par_summary)) in
        sequential.iter().zip(parallel.iter())
    {
        assert_eq!(seq_summary, par_summary);
        assert_eq!(seq_result.trace.len(), par_result.trace.len());
        assert_eq!(
            seq_result.stats.events_processed,
            par_result.stats.events_processed
        );
    }
}

#[test]
fn hardened_sweep_is_bit_identical_for_every_job_count() {
    let cfg = ExperimentConfig::paper(ProtocolKind::Rip, MeshDegree::D4, 0);
    let sequential = run_sweep_with(&cfg, 4, 300, options(1, SweepMode::Trace));
    let parallel = run_sweep_with(&cfg, 4, 300, options(4, SweepMode::Trace));
    assert!(sequential.failed.is_empty());
    assert!(parallel.failed.is_empty());
    assert_eq!(sequential.retries, parallel.retries);
    assert_eq!(sequential.summaries(), parallel.summaries());
}

#[test]
fn streaming_mode_matches_trace_mode_for_each_paper_protocol() {
    for protocol in [ProtocolKind::Rip, ProtocolKind::Dbf, ProtocolKind::Bgp3] {
        let cfg = ExperimentConfig::paper(protocol, MeshDegree::D4, 0);
        let trace = run_sweep_with(&cfg, 3, 700, options(2, SweepMode::Trace));
        let streaming = run_sweep_with(&cfg, 3, 700, options(2, SweepMode::Streaming));
        assert!(trace.failed.is_empty(), "{protocol}: trace sweep failed");
        assert_eq!(
            trace.summaries(),
            streaming.summaries(),
            "{protocol}: streaming fold diverged from the trace analyzers"
        );
        // Streaming discards every trace; trace mode keeps them all.
        assert_eq!(streaming.results().count(), 0);
        assert_eq!(trace.results().count(), 3);
    }
}

#[test]
fn a_panicking_run_is_isolated_and_reported() {
    let runs = 4;
    // The factory is called once per node (49 per run); exactly one call
    // — inside exactly one run, whichever worker gets there first —
    // panics. The other slots must complete untouched.
    let builds = Arc::new(AtomicUsize::new(0));
    let trigger = 60; // lands mid-build of some run for every schedule
    let factory = {
        let builds = Arc::clone(&builds);
        ProtocolFactory::new(move || {
            assert_ne!(
                builds.fetch_add(1, Ordering::Relaxed),
                trigger,
                "injected protocol-construction panic"
            );
            Box::new(Spf::default())
        })
    };
    let mut cfg = ExperimentConfig::paper(ProtocolKind::Spf, MeshDegree::D4, 0);
    cfg.protocol_override = Some(factory);

    let outcome = run_sweep_with(&cfg, runs, 40, options(2, SweepMode::Streaming));
    assert_eq!(outcome.completed.len(), runs - 1);
    assert_eq!(outcome.failed.len(), 1);
    assert!(
        matches!(outcome.failed[0].error, RunError::Panicked(_)),
        "expected a Panicked error, got: {}",
        outcome.failed[0].error
    );
}
