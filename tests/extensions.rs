//! Integration tests of the §6 extension features: link-state routing,
//! multiple flows, compound failures, and random topologies.

use convergence::experiment::TopologySpec;
use convergence::failure::FailurePlan;
use convergence::prelude::*;
use netsim::rng::SimRng;
use topology::mesh::MeshDegree;
use topology::random::{gilbert, waxman};

#[test]
fn spf_outconverges_every_distance_vector_protocol() {
    // Degree 3 forces real path exploration on the distance/path vector
    // protocols; SPF just floods and recomputes. Average a few seeds.
    let rt = |protocol: ProtocolKind| -> f64 {
        (0..5u64)
            .map(|seed| {
                let cfg = ExperimentConfig::paper(protocol, MeshDegree::D3, 50 + seed);
                summarize(&run(&cfg).expect("run succeeds")).expect("summary").routing_convergence_s
            })
            .sum::<f64>()
            / 5.0
    };
    let spf = rt(ProtocolKind::Spf);
    assert!(spf < 1.0, "SPF should converge in under a second, got {spf}");
    for protocol in [ProtocolKind::Rip, ProtocolKind::Bgp] {
        let dv = rt(protocol);
        assert!(
            dv > spf,
            "{protocol} ({dv:.3}s) should converge slower than SPF ({spf:.3}s)"
        );
    }
}

#[test]
fn multiple_flows_share_one_failure() {
    let mut cfg = ExperimentConfig::paper(ProtocolKind::Dbf, MeshDegree::D5, 11);
    cfg.traffic.flows = 4;
    let result = run(&cfg).expect("run succeeds");
    assert_eq!(result.flows.len(), 4);
    let s = summarize(&result).expect("summary");
    // 4 flows x 20 pps x 50 s window.
    assert_eq!(s.injected, 4 * 1000);
    assert_eq!(s.injected, s.delivered + s.drops.total());
    assert!(s.delivery_ratio() > 0.9);
}

#[test]
fn double_link_failure_never_partitions() {
    for seed in 0..10 {
        let mut cfg = ExperimentConfig::paper(ProtocolKind::Spf, MeshDegree::D4, seed);
        cfg.failure = FailurePlan::MultipleLinks { count: 2 };
        let result = run(&cfg).expect("run succeeds");
        assert_eq!(result.failure.edges.len(), 2);
        let mut degraded = result.graph.clone();
        for edge in &result.failure.edges {
            degraded = degraded.without_edge(*edge);
        }
        assert!(degraded.is_connected(), "seed {seed} partitioned the mesh");
        // SPF reroutes around both failures.
        let s = summarize(&result).expect("summary");
        assert!(s.delivery_ratio() > 0.95, "seed {seed}: {}", s.delivery_ratio());
    }
}

#[test]
fn router_failure_takes_down_all_its_links() {
    let mut cfg = ExperimentConfig::paper(ProtocolKind::Spf, MeshDegree::D6, 3);
    cfg.failure = FailurePlan::NodeOnPath;
    let result = run(&cfg).expect("run succeeds");
    let victim = result.failure.node.expect("node failure selects a victim");
    assert_eq!(
        result.failure.edges.len(),
        result.graph.neighbors(victim).len(),
        "every incident link must fail"
    );
    assert!(result.failure.edges.iter().all(|e| e.a == victim || e.b == victim));
    // The victim was an interior router of the flow's path, not an
    // endpoint.
    let flow = result.flows[0];
    assert_ne!(victim, flow.sender);
    assert_ne!(victim, flow.receiver);
}

#[test]
fn random_topologies_run_end_to_end() {
    let graph = gilbert(30, 0.15, &mut SimRng::seed_from(8));
    let mut cfg = ExperimentConfig::paper(ProtocolKind::Dbf, MeshDegree::D4, 21);
    cfg.topology = TopologySpec::Custom(graph);
    cfg.failure = FailurePlan::None; // random graphs may have bridges
    let result = run(&cfg).expect("run succeeds");
    let s = summarize(&result).expect("summary");
    assert_eq!(s.drops.total(), 0);
    assert_eq!(s.delivered, s.injected);
}

#[test]
fn waxman_topology_with_failure() {
    // Waxman graphs may contain bridges; retry seeds until the chosen
    // on-path link is survivable, mirroring how a practitioner would use
    // the harness on irregular topologies.
    for seed in 0..20 {
        let graph = waxman(25, 0.6, 0.3, &mut SimRng::seed_from(seed));
        let mut cfg = ExperimentConfig::paper(ProtocolKind::Spf, MeshDegree::D4, seed);
        cfg.topology = TopologySpec::Custom(graph.clone());
        let result = match run(&cfg) {
            Ok(r) => r,
            Err(RunError::NoPath(_)) => continue,
            Err(e) => panic!("unexpected error: {e}"),
        };
        let edge = result.failure.edges[0];
        if !graph.without_edge(edge).is_connected() {
            continue; // bridge failed; the flow legitimately dies
        }
        let s = summarize(&result).expect("summary");
        assert!(
            s.delivery_ratio() > 0.9,
            "seed {seed}: delivery {}",
            s.delivery_ratio()
        );
        return;
    }
    panic!("no usable waxman scenario in 20 seeds");
}

#[test]
fn no_failure_baseline_is_perfect_for_all_protocols() {
    for protocol in ProtocolKind::ALL {
        let mut cfg = ExperimentConfig::paper(protocol, MeshDegree::D4, 77);
        cfg.failure = FailurePlan::None;
        let s = summarize(&run(&cfg).expect("run succeeds")).expect("summary");
        assert_eq!(s.drops.total(), 0, "{protocol} dropped packets with no failure");
        assert_eq!(s.routing_convergence_s, 0.0);
        assert_eq!(s.transient_paths, 0);
    }
}

#[test]
fn distance_vector_metric_horizon_is_respected() {
    // RFC 2453's infinity of 16 caps the usable network diameter: on a
    // degree-4 13x13 grid (diameter 24), far-apart pairs are legitimately
    // unreachable under RIP — while link-state SPF covers the whole mesh.
    use netsim::link::LinkConfig;
    use netsim::time::SimTime;
    use topology::instantiate::to_simulator_builder;
    use topology::mesh::Mesh;

    let mesh = Mesh::regular(13, 13, MeshDegree::D4);
    let build = |protocol: ProtocolKind| {
        let (mut b, _) = to_simulator_builder(mesh.graph(), LinkConfig::default()).unwrap();
        b.seed(7);
        let mut sim = b.build().unwrap();
        for n in mesh.graph().nodes() {
            sim.install_protocol(n, protocol.build()).unwrap();
        }
        sim.start();
        sim.run_until(SimTime::from_secs(150));
        sim
    };

    let corner = mesh.node_at(0, 0);
    let near = mesh.node_at(5, 5); // 10 hops: inside the horizon
    let far = mesh.node_at(12, 12); // 24 hops: beyond infinity

    let rip_sim = build(ProtocolKind::Rip);
    assert!(rip_sim.forwarding_path(corner, near).is_complete());
    assert!(
        !rip_sim.forwarding_path(corner, far).is_complete(),
        "a 24-hop pair must be beyond RIP's metric 16"
    );

    let spf_sim = build(ProtocolKind::Spf);
    assert!(spf_sim.forwarding_path(corner, far).is_complete());
}
