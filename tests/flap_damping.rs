//! Integration tests of RFC 2439 route-flap damping over a flapping link.

use bgp::{Bgp, BgpConfig, FlapConfig};
use convergence::experiment::ProtocolFactory;
use convergence::failure::FailurePlan;
use convergence::prelude::*;
use netsim::time::SimDuration;
use topology::mesh::MeshDegree;

fn flapping_plan() -> FailurePlan {
    FailurePlan::FlappingLink {
        cycles: 3,
        down: SimDuration::from_secs(2),
        up: SimDuration::from_secs(3),
    }
}

fn run_flapping(damping: bool, seed: u64) -> RunSummary {
    let mut cfg = ExperimentConfig::paper(ProtocolKind::Bgp3, MeshDegree::D6, seed);
    cfg.failure = flapping_plan();
    cfg.traffic.tail = SimDuration::from_secs(60);
    if damping {
        cfg.protocol_override = Some(ProtocolFactory::new(|| {
            Box::new(Bgp::with_config(BgpConfig {
                flap_damping: Some(FlapConfig::aggressive()),
                ..BgpConfig::bgp3()
            }).expect("valid config"))
        }));
    }
    summarize(&run(&cfg).expect("run succeeds")).expect("summary")
}

#[test]
fn flapping_link_recovers_without_damping() {
    let mut delivered = 0u64;
    let mut injected = 0u64;
    for seed in 0..5 {
        let s = run_flapping(false, 8100 + seed);
        delivered += s.delivered;
        injected += s.injected;
    }
    let ratio = delivered as f64 / injected as f64;
    assert!(ratio > 0.95, "undamped BGP-3 should ride out flaps: {ratio:.3}");
}

#[test]
fn damping_extends_unavailability_after_flaps_stop() {
    // The Mao et al. effect the paper's intro cites: suppression outlives
    // the instability.
    let mut conv_off = 0.0;
    let mut conv_on = 0.0;
    for seed in 0..5 {
        conv_off += run_flapping(false, 8200 + seed).routing_convergence_s;
        conv_on += run_flapping(true, 8200 + seed).routing_convergence_s;
    }
    assert!(
        conv_on > conv_off + 5.0,
        "damping should extend convergence substantially ({:.1}s vs {:.1}s)",
        conv_on / 5.0,
        conv_off / 5.0
    );
}

#[test]
fn damped_runs_remain_deterministic_and_conservative() {
    let a = run_flapping(true, 8300);
    let b = run_flapping(true, 8300);
    assert_eq!(a, b);
    assert_eq!(a.injected, a.delivered + a.drops.total());
}

#[test]
fn single_failure_is_unaffected_by_damping() {
    // One failure = one withdrawal per route: never crosses the suppress
    // threshold, so damping-on equals damping-off.
    let run_once = |damping: bool| -> RunSummary {
        let mut cfg = ExperimentConfig::paper(ProtocolKind::Bgp3, MeshDegree::D6, 8400);
        if damping {
            cfg.protocol_override = Some(ProtocolFactory::new(|| {
                Box::new(Bgp::with_config(BgpConfig {
                    flap_damping: Some(FlapConfig::aggressive()),
                    ..BgpConfig::bgp3()
                }).expect("valid config"))
            }));
        }
        summarize(&run(&cfg).expect("run succeeds")).expect("summary")
    };
    let off = run_once(false);
    let on = run_once(true);
    assert_eq!(off.drops, on.drops);
    assert_eq!(off.delivered, on.delivered);
}
