//! End-to-end tests of the fault-injection subsystem: impaired links,
//! crash/restart failures, and the hardened sweep harness.

use convergence::prelude::*;
use netsim::time::SimDuration;
use netsim::trace::TraceEvent;
use topology::mesh::MeshDegree;

/// A paper run with a uniform background impairment on every link.
fn impaired_config(
    protocol: ProtocolKind,
    degree: MeshDegree,
    seed: u64,
    impairment: Impairment,
) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::paper(protocol, degree, seed);
    cfg.link.impairment = impairment;
    cfg
}

#[test]
fn rip_converges_despite_heavy_background_loss() {
    // 20% of every frame (data and periodic updates alike) vanishes; RIP's
    // periodic full-table updates must still converge routing and deliver
    // most of the flow.
    let cfg = impaired_config(
        ProtocolKind::Rip,
        MeshDegree::D4,
        11,
        Impairment::lossy(0.20),
    );
    let result = run(&cfg).expect("run succeeds under loss");
    let s = summarize(&result).expect("summary");
    assert!(result.stats.frames_impaired > 0, "loss must actually fire");
    // Loss is per hop: a 6-12 hop path survives with 0.8^hops, i.e. only
    // 7-26% of packets arrive. Delivery degrades gracefully; the real
    // claim is that routing still converges underneath.
    assert!(
        s.delivery_ratio() > 0.05,
        "some packets must still arrive, got {:.2}",
        s.delivery_ratio()
    );
    assert!(
        s.routing_convergence_s.is_finite(),
        "routing must reconverge after the failure despite the loss"
    );
}

#[test]
fn dbf_converges_despite_background_loss() {
    let cfg = impaired_config(
        ProtocolKind::Dbf,
        MeshDegree::D4,
        12,
        Impairment::lossy(0.10),
    );
    let result = run(&cfg).expect("run succeeds under loss");
    let s = summarize(&result).expect("summary");
    assert!(result.stats.frames_impaired > 0);
    // 10% per-hop loss over 6-12 hops leaves 0.9^hops = 28-53% delivery.
    assert!(s.delivery_ratio() > 0.2, "got {:.2}", s.delivery_ratio());
    assert!(s.routing_convergence_s.is_finite());
}

#[test]
fn bgp_reliable_control_is_retransmitted_not_lost() {
    // BGP speaks over a reliable (TCP-like) transport: impairment loss
    // turns into retransmission delay, never into a lost update.
    let clean = ExperimentConfig::paper(ProtocolKind::Bgp3, MeshDegree::D4, 13);
    let lossy = impaired_config(
        ProtocolKind::Bgp3,
        MeshDegree::D4,
        13,
        Impairment::lossy(0.15),
    );
    let clean_run = run(&clean).expect("clean run succeeds");
    let lossy_run = run(&lossy).expect("lossy run succeeds");
    assert_eq!(clean_run.stats.control_retransmits, 0);
    assert!(
        lossy_run.stats.control_retransmits > 0,
        "15% loss must force reliable-frame retransmissions"
    );
    let s = summarize(&lossy_run).expect("summary");
    assert!(
        s.routing_convergence_s.is_finite(),
        "BGP-3 must still converge; updates are delayed, not dropped"
    );
}

#[test]
fn impairment_drops_preserve_packet_conservation() {
    for protocol in [ProtocolKind::Rip, ProtocolKind::Bgp3, ProtocolKind::Spf] {
        let cfg = impaired_config(protocol, MeshDegree::D4, 14, Impairment::lossy(0.15));
        let s = summarize(&run(&cfg).expect("run succeeds")).expect("summary");
        assert!(s.drops.impaired > 0, "{protocol}: expected impairment drops");
        assert_eq!(
            s.injected,
            s.delivered + s.drops.total(),
            "{protocol}: injected != delivered + dropped (impaired drops leak)"
        );
    }
}

#[test]
fn impaired_runs_are_deterministic() {
    // Loss + jitter + reordering all draw from the seeded impairment
    // stream: identical configs must produce byte-identical traces.
    let impairment = Impairment::lossy(0.15)
        .with_jitter(SimDuration::from_millis(5))
        .with_reordering(0.05, SimDuration::from_millis(2));
    let cfg = impaired_config(ProtocolKind::Dbf, MeshDegree::D4, 15, impairment);
    let a = run(&cfg).expect("first run");
    let b = run(&cfg).expect("second run");
    assert!(
        a.trace.iter().eq(b.trace.iter()),
        "impaired traces must be identical event-for-event"
    );
    assert_eq!(summarize(&a).expect("summary"), summarize(&b).expect("summary"));
}

#[test]
fn clean_runs_never_touch_the_impairment_stream() {
    let cfg = ExperimentConfig::paper(ProtocolKind::Rip, MeshDegree::D4, 16);
    let result = run(&cfg).expect("run succeeds");
    assert_eq!(result.stats.frames_impaired, 0);
    assert_eq!(result.stats.control_retransmits, 0);
    assert_eq!(summarize(&result).expect("summary").drops.impaired, 0);
}

#[test]
fn node_crash_restart_recovers_with_cold_state() {
    let mut cfg = ExperimentConfig::paper(ProtocolKind::Dbf, MeshDegree::D4, 17);
    cfg.failure = FailurePlan::NodeCrashRestart {
        down: SimDuration::from_secs(10),
    };
    let result = run(&cfg).expect("run succeeds");
    let census = result.trace.census();
    assert_eq!(census.node_restarts, 1, "exactly one cold reboot");
    let restart = result.failure.restart.expect("a restart was selected");
    let degree = result.graph.neighbors(restart.node).len() as u64;
    assert_eq!(
        census.link_failures, degree,
        "every adjacent link fails with the router"
    );
    assert_eq!(census.link_recoveries, degree, "and recovers with it");
    // The reboot is visible in the trace at t_fail + down.
    let reboot_at = result
        .trace
        .iter()
        .find_map(|e| match e {
            TraceEvent::NodeRestarted { time, node } if *node == restart.node => Some(*time),
            _ => None,
        })
        .expect("NodeRestarted event present");
    assert_eq!(reboot_at, result.t_fail + SimDuration::from_secs(10));
    let s = summarize(&result).expect("summary");
    assert!(
        s.routing_convergence_s.is_finite(),
        "routing must absorb the crash and the cold rejoin"
    );
    assert!(s.delivered > 0);
}

#[test]
fn node_crash_restart_is_reproducible() {
    let mut cfg = ExperimentConfig::paper(ProtocolKind::Rip, MeshDegree::D5, 18);
    cfg.failure = FailurePlan::NodeCrashRestart {
        down: SimDuration::from_secs(5),
    };
    let a = run(&cfg).expect("first run");
    let b = run(&cfg).expect("second run");
    assert!(a.trace.iter().eq(b.trace.iter()));
    assert_eq!(a.failure.restart, b.failure.restart);
    assert_eq!(summarize(&a).expect("summary"), summarize(&b).expect("summary"));
}

#[test]
fn lossy_period_plan_impairs_then_heals_without_link_events() {
    let mut cfg = ExperimentConfig::paper(ProtocolKind::Bgp3, MeshDegree::D4, 19);
    cfg.failure = FailurePlan::LossyLinkOnPath {
        impairment: Impairment::lossy(0.5),
        duration: SimDuration::from_secs(15),
    };
    let result = run(&cfg).expect("run succeeds");
    let census = result.trace.census();
    assert_eq!(
        census.impairment_changes, 2,
        "one lossy onset and one healing"
    );
    assert_eq!(
        census.link_failures, 0,
        "the link degrades; it never goes down"
    );
    assert!(
        result.stats.frames_impaired > 0,
        "50% loss on the live path must bite"
    );
    assert!(summarize(&result).expect("summary").delivered > 0);
}

#[test]
fn unsatisfiable_sweep_completes_with_typed_errors() {
    // 50 simultaneous link failures cannot leave a 49-node mesh connected
    // (the degree-4 7x7 mesh has 84 edges; 48 are needed for a spanning
    // tree). Every seed must fail with a typed selection error -- and the
    // sweep itself must finish instead of panicking.
    let mut cfg = ExperimentConfig::paper(ProtocolKind::Dbf, MeshDegree::D4, 0);
    cfg.failure = FailurePlan::MultipleLinks { count: 50 };
    let retry = convergence::aggregate::RetryPolicy::default();
    let outcome = run_sweep(&cfg, 4, 1, retry);
    assert!(outcome.completed.is_empty());
    assert_eq!(outcome.failed.len(), 4);
    assert_eq!(
        outcome.retries,
        4 * u64::from(retry.max_attempts - 1),
        "every slot exhausts its retries"
    );
    for failure in &outcome.failed {
        assert_eq!(failure.attempts, retry.max_attempts);
        assert!(
            matches!(
                failure.error,
                RunError::Selection(SelectionError::NotEnoughLinks { requested: 50, .. })
            ),
            "expected NotEnoughLinks, got: {}",
            failure.error
        );
    }
}

#[test]
fn satisfiable_sweep_still_completes_every_slot() {
    let cfg = ExperimentConfig::paper(ProtocolKind::Dbf, MeshDegree::D4, 0);
    let outcome = run_sweep(&cfg, 3, 7000, convergence::aggregate::RetryPolicy::default());
    assert_eq!(outcome.completed.len(), 3);
    assert!(outcome.failed.is_empty());
    assert_eq!(outcome.retries, 0);
    // First-try sweeps use the same seeds as run_many, so summaries match.
    let reference = run_many(&cfg, 3, 7000).expect("run_many succeeds");
    assert_eq!(
        outcome.summaries(),
        reference.iter().map(|(_, s)| s.clone()).collect::<Vec<_>>()
    );
}

#[test]
fn reordering_forces_go_back_n_retransmissions() {
    // Heavy reordering (no loss at all): 30% of data frames are held back
    // 40 ms, long enough for the rest of the window to overtake them. The
    // go-back-N sink only accepts in-sequence packets, so every overtaken
    // frame costs a timeout-driven window retransmission — yet the
    // transfer must still complete, because nothing is ever lost.
    let mut cfg = impaired_config(
        ProtocolKind::Spf,
        MeshDegree::D4,
        21,
        Impairment::NONE.with_reordering(0.30, SimDuration::from_millis(40)),
    );
    // A tight RTO keeps the run short: at 30% reordering nearly every
    // window stalls once, and each stall costs one timeout.
    cfg.traffic.mode = TrafficMode::GoBackN(GoBackNConfig {
        total_packets: 1_000,
        rto: SimDuration::from_millis(200),
        rto_cap: SimDuration::from_secs(2),
        ..GoBackNConfig::default()
    });
    cfg.traffic.lead = SimDuration::from_secs(2);
    cfg.traffic.tail = SimDuration::from_secs(120);
    cfg.drain = SimDuration::from_secs(300);

    let result = run(&cfg).expect("run succeeds under reordering");
    let report = &result.flow_reports[0];
    assert!(
        report.retransmissions > 0,
        "reordering must trigger go-back-N retransmissions"
    );
    assert_eq!(
        report.completed_at.map(|_| report.total),
        Some(1_000),
        "pure reordering delays packets, it never loses them: the \
         transfer must finish"
    );
    // Reordering draws from the seeded impairment stream like loss does,
    // so the whole retransmission schedule is reproducible.
    let again = run(&cfg).expect("second run succeeds");
    assert!(result.trace.iter().eq(again.trace.iter()));
    assert_eq!(
        report.retransmissions,
        again.flow_reports[0].retransmissions
    );
}

/// A protocol that re-arms a 5-second periodic timer and pings its
/// neighbors on every tick, making each tick visible in the trace.
#[derive(Debug, Default)]
struct TickProto {
    ticks: Vec<netsim::time::SimTime>,
}

#[derive(Debug)]
struct Ping;

impl netsim::protocol::Payload for Ping {
    fn size_bytes(&self) -> usize {
        8
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

const TICK: SimDuration = SimDuration::from_secs(5);

impl netsim::protocol::RoutingProtocol for TickProto {
    fn name(&self) -> &'static str {
        "tick"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn on_start(&mut self, ctx: &mut netsim::simulator::ProtocolContext<'_>) {
        ctx.set_timer(TICK, netsim::protocol::TimerToken(1));
    }

    fn on_timer(
        &mut self,
        ctx: &mut netsim::simulator::ProtocolContext<'_>,
        _token: netsim::protocol::TimerToken,
    ) {
        self.ticks.push(ctx.now());
        for n in ctx.neighbors() {
            ctx.send(n, std::sync::Arc::new(Ping));
        }
        ctx.set_timer(TICK, netsim::protocol::TimerToken(1));
    }
}

#[test]
fn crash_restart_landing_on_a_timer_tick_wipes_the_pending_timer() {
    use netsim::link::LinkConfig;
    use netsim::simulator::SimulatorBuilder;
    use netsim::time::SimTime;

    let mut b = SimulatorBuilder::new();
    let nodes = b.add_nodes(2);
    b.add_link(nodes[0], nodes[1], LinkConfig::default())
        .expect("link");
    let mut sim = b.build().expect("build");
    sim.install_protocol(nodes[0], Box::new(TickProto::default()))
        .expect("install");
    sim.install_protocol(nodes[1], Box::new(TickProto::default()))
        .expect("install");
    // Crash at t=15s — the exact instant the third tick is due — and
    // reboot at t=20s, the exact instant the (now dead) fourth tick was
    // scheduled for. Both collisions are same-timestamp event-queue races
    // the engine must resolve deterministically.
    sim.schedule_node_crash_restart(
        SimTime::from_secs(15),
        nodes[0],
        SimDuration::from_secs(5),
        Box::new(TickProto::default()),
    )
    .expect("schedule crash");
    sim.start();
    sim.run_until(SimTime::from_secs(33));

    let tick_seconds = |node| -> Vec<u64> {
        sim.protocol(node)
            .expect("protocol installed")
            .as_any()
            .downcast_ref::<TickProto>()
            .expect("TickProto")
            .ticks
            .iter()
            .map(|t| t.as_nanos() / 1_000_000_000)
            .collect()
    };
    // The neighbor never crashed: its clock ticks straight through.
    assert_eq!(tick_seconds(nodes[1]), vec![5, 10, 15, 20, 25, 30]);
    // The replacement instance boots cold at t=20. The crashed instance's
    // pending t=20 tick must have died with it (same-instant NodeRestart
    // wins the queue race), so the fresh timer realigns to reboot + 5s.
    assert_eq!(tick_seconds(nodes[0]), vec![25, 30]);

    // The crashed instance's own ticks are gone with it, but its pings
    // survive in the trace: the t=15 tick fired at the crash instant
    // (links fail, the router itself stays up until reboot).
    let pings_from: Vec<u64> = sim
        .trace()
        .iter()
        .filter_map(|e| match e {
            netsim::trace::TraceEvent::ControlSent { time, from, .. } if *from == nodes[0] => {
                Some(time.as_nanos() / 1_000_000_000)
            }
            _ => None,
        })
        .collect();
    assert_eq!(pings_from, vec![5, 10, 15, 25, 30]);
    // The t=15 ping left a router whose only link had just failed: it
    // must be charged as a lost control message, not delivered.
    assert!(sim.stats().control_messages_lost >= 1);
}

#[test]
fn watchdog_aborts_runaway_runs_with_typed_error() {
    let mut cfg = ExperimentConfig::paper(ProtocolKind::Rip, MeshDegree::D4, 20);
    // Far too small for even the warm-up: the watchdog must fire.
    cfg.watchdog.max_events = 1_000;
    match run(&cfg) {
        Err(RunError::Watchdog { events, .. }) => {
            assert!(events >= 1_000, "fired at {events} events")
        }
        other => panic!("expected RunError::Watchdog, got {other:?}"),
    }
    // A watchdog abort is a resource bound, not a bad draw: sweeps report
    // it without burning retries.
    let outcome = run_sweep(&cfg, 2, 20, convergence::aggregate::RetryPolicy::default());
    assert_eq!(outcome.failed.len(), 2);
    assert_eq!(outcome.retries, 0);
    assert!(outcome.failed.iter().all(|f| f.attempts == 1));
}
