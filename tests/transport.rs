//! End-to-end tests of the go-back-N transport riding over converging
//! routing protocols (paper §6's TCP-performance future work).

use convergence::prelude::*;
use netsim::time::{SimDuration, SimTime};
use topology::mesh::MeshDegree;

fn gbn_config(total: u64) -> GoBackNConfig {
    GoBackNConfig {
        total_packets: total,
        ..GoBackNConfig::default()
    }
}

fn run_transfer(
    protocol: ProtocolKind,
    degree: MeshDegree,
    seed: u64,
    total: u64,
) -> (RunResult, WindowFlowReport) {
    let mut cfg = ExperimentConfig::paper(protocol, degree, seed);
    cfg.traffic.mode = TrafficMode::GoBackN(gbn_config(total));
    // Closed-loop flows run at link speed (~hundreds of packets/s), far
    // faster than the paper's 20 pkt/s CBR: shorten the pre-failure lead
    // so the transfer is still in flight when the link dies.
    cfg.traffic.lead = SimDuration::from_secs(2);
    cfg.drain = SimDuration::from_secs(240);
    let result = run(&cfg).expect("run succeeds");
    let report = result.flow_reports[0].clone();
    (result, report)
}

#[test]
fn transfer_completes_on_dense_mesh_despite_failure() {
    let (result, report) = run_transfer(ProtocolKind::Dbf, MeshDegree::D6, 1, 4000);
    let completed = report.completed_at.expect("transfer should finish");
    assert!(completed > result.t_fail, "transfer spans the failure");
    // DBF at degree 6 switches instantly: at most one RTO's worth of
    // retransmissions.
    assert!(
        report.retransmissions <= 2 * 8,
        "expected near-zero retransmissions, got {}",
        report.retransmissions
    );
}

#[test]
fn reliability_masks_convergence_loss_on_sparse_mesh() {
    // Over RIP at degree 3 the outage lasts many seconds; go-back-N stalls
    // and retransmits, but everything eventually arrives in order.
    let (result, report) = run_transfer(ProtocolKind::Rip, MeshDegree::D3, 2, 4000);
    let completed = report.completed_at.expect("transfer should finish");
    assert!(report.retransmissions > 0, "the outage must force retransmission");
    assert!(completed > result.t_fail);
    // The stall is visible as zero goodput right after the failure...
    let during = report.goodput(result.t_fail, result.t_fail + SimDuration::from_secs(5));
    // ...and recovery restores it later.
    let before = report.goodput(
        SimTime::from_nanos(result.t_fail.as_nanos() - 2_000_000_000),
        result.t_fail,
    );
    assert!(
        during < before,
        "goodput should dip during convergence ({during:.1} vs {before:.1} pkt/s)"
    );
}

#[test]
fn progress_is_monotone_and_complete() {
    let (_, report) = run_transfer(ProtocolKind::Bgp3, MeshDegree::D5, 3, 500);
    assert!(report
        .progress
        .windows(2)
        .all(|w| w[0].0 <= w[1].0 && w[0].1 <= w[1].1));
    assert_eq!(report.progress.last().unwrap().1, 500);
}

#[test]
fn multiple_transfers_share_the_network() {
    let mut cfg = ExperimentConfig::paper(ProtocolKind::Spf, MeshDegree::D6, 4);
    cfg.traffic.flows = 3;
    cfg.traffic.mode = TrafficMode::GoBackN(gbn_config(300));
    let result = run(&cfg).expect("run succeeds");
    assert_eq!(result.flow_reports.len(), 3);
    for (i, report) in result.flow_reports.iter().enumerate() {
        assert!(
            report.completed_at.is_some(),
            "flow {i} did not complete"
        );
    }
    // Endpoints pairwise distinct.
    for i in 0..3 {
        for j in (i + 1)..3 {
            assert_ne!(result.flows[i].sender, result.flows[j].sender);
            assert_ne!(result.flows[i].receiver, result.flows[j].receiver);
        }
    }
}

#[test]
fn transfer_determinism() {
    let (_, a) = run_transfer(ProtocolKind::Dbf, MeshDegree::D4, 9, 400);
    let (_, b) = run_transfer(ProtocolKind::Dbf, MeshDegree::D4, 9, 400);
    assert_eq!(a, b);
}

#[test]
fn config_validation_limits_flow_count() {
    let mut cfg = ExperimentConfig::paper(ProtocolKind::Dbf, MeshDegree::D4, 1);
    cfg.traffic.flows = 8; // only 7 first-row senders exist
    cfg.traffic.mode = TrafficMode::GoBackN(gbn_config(10));
    assert!(cfg.validate().is_err());
}
