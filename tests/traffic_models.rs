//! Tests of the alternative traffic models and weighted link costs.

use convergence::prelude::*;
use netsim::ident::NodeId;
use netsim::link::LinkConfig;
use netsim::time::SimTime;
use topology::mesh::MeshDegree;

#[test]
fn poisson_traffic_delivers_like_cbr_on_average() {
    let run_mode = |mode: TrafficMode, seed: u64| {
        let mut cfg = ExperimentConfig::paper(ProtocolKind::Dbf, MeshDegree::D6, seed);
        cfg.traffic.mode = mode;
        summarize(&run(&cfg).expect("run succeeds")).expect("summary")
    };
    let mut cbr_total = 0u64;
    let mut poisson_total = 0u64;
    let mut poisson_injected = 0u64;
    for seed in 0..6 {
        cbr_total += run_mode(TrafficMode::Cbr, 600 + seed).delivered;
        let p = run_mode(TrafficMode::Poisson, 600 + seed);
        poisson_total += p.delivered;
        poisson_injected += p.injected;
        assert!(p.delivery_ratio() > 0.98, "seed {seed}: {}", p.delivery_ratio());
    }
    // Poisson injects ~rate x window packets on average (20 x 50 = 1000/run).
    let mean_injected = poisson_injected as f64 / 6.0;
    assert!(
        (700.0..1300.0).contains(&mean_injected),
        "Poisson mean count off: {mean_injected}"
    );
    // Totals comparable within 30%.
    let ratio = poisson_total as f64 / cbr_total as f64;
    assert!((0.7..1.3).contains(&ratio), "delivery ratio off: {ratio}");
}

#[test]
fn poisson_runs_are_deterministic() {
    let digest = |seed: u64| {
        let mut cfg = ExperimentConfig::paper(ProtocolKind::Spf, MeshDegree::D4, seed);
        cfg.traffic.mode = TrafficMode::Poisson;
        let r = run(&cfg).expect("run succeeds");
        (r.stats.packets_injected, r.stats.packets_delivered)
    };
    assert_eq!(digest(9), digest(9));
}

/// A 4-node diamond where the 2-hop route is cheaper than the 1-hop route:
///
/// ```text
///     0 ---(cost 10)--- 3
///     0 -1- 1 -1- 2 -1- 3   (total cost 3)
/// ```
fn weighted_diamond() -> (netsim::simulator::SimulatorBuilder, Vec<NodeId>) {
    let mut b = netsim::simulator::SimulatorBuilder::new();
    let nodes = b.add_nodes(4);
    let expensive = LinkConfig {
        cost: 10,
        ..LinkConfig::default()
    };
    b.add_link(nodes[0], nodes[3], expensive).unwrap();
    for w in nodes.windows(2) {
        b.add_link(w[0], w[1], LinkConfig::default()).unwrap();
    }
    (b, nodes)
}

#[test]
fn cost_aware_protocols_avoid_the_expensive_shortcut() {
    // RIP, DBF, SPF and DUAL minimize additive cost: 0->3 must route the
    // long way (3 hops, cost 3) rather than the direct cost-10 link.
    for protocol in [
        ProtocolKind::Rip,
        ProtocolKind::Dbf,
        ProtocolKind::Spf,
        ProtocolKind::Dual,
    ] {
        let (mut b, nodes) = weighted_diamond();
        b.seed(1);
        let mut sim = b.build().unwrap();
        for &n in &nodes {
            sim.install_protocol(n, protocol.build()).unwrap();
        }
        sim.start();
        sim.run_until(SimTime::from_secs(90));
        assert_eq!(
            sim.fib(nodes[0]).next_hop(nodes[3]),
            Some(nodes[1]),
            "{protocol} should take the cheap 3-hop path"
        );
    }
}

#[test]
fn bgp_counts_as_hops_and_takes_the_shortcut() {
    // BGP's shortest-AS-path policy ignores link costs: the 1-hop
    // expensive link wins.
    let (mut b, nodes) = weighted_diamond();
    b.seed(2);
    let mut sim = b.build().unwrap();
    for &n in &nodes {
        sim.install_protocol(n, ProtocolKind::Bgp3.build()).unwrap();
    }
    sim.start();
    sim.run_until(SimTime::from_secs(90));
    assert_eq!(
        sim.fib(nodes[0]).next_hop(nodes[3]),
        Some(nodes[3]),
        "BGP should take the direct AS hop regardless of cost"
    );
}

#[test]
fn cost_failover_falls_back_to_the_expensive_link() {
    // When the cheap path breaks, cost-aware protocols switch to the
    // expensive shortcut rather than blackholing.
    let (mut b, nodes) = weighted_diamond();
    b.seed(3);
    let mut sim = b.build().unwrap();
    for &n in &nodes {
        sim.install_protocol(n, ProtocolKind::Dbf.build()).unwrap();
    }
    sim.start();
    sim.run_until(SimTime::from_secs(90));
    let link = sim.link_between(nodes[1], nodes[2]).unwrap();
    sim.schedule_link_failure(SimTime::from_secs(100), link).unwrap();
    sim.run_until(SimTime::from_secs(200));
    assert_eq!(sim.fib(nodes[0]).next_hop(nodes[3]), Some(nodes[3]));
}
